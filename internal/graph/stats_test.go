package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestSummarizeLine(t *testing.T) {
	g := Line(100, 1)
	s := Summarize(g, 2)
	if s.Vertices != 100 || s.UndirectedEdges != 99 {
		t.Fatalf("%+v", s)
	}
	if s.MinDegree != 1 || s.MaxDegree != 2 {
		t.Fatalf("degrees: %+v", s)
	}
	if s.Components != 1 || s.LargestComp != 100 {
		t.Fatalf("components: %+v", s)
	}
	// Double sweep finds the exact diameter of a path.
	if s.ApproxDiameter != 99 {
		t.Fatalf("diameter=%d want 99", s.ApproxDiameter)
	}
	if s.Isolated != 0 {
		t.Fatalf("isolated=%d", s.Isolated)
	}
	if !strings.Contains(s.String(), "components=1") {
		t.Fatalf("String()=%q", s.String())
	}
}

func TestSummarizeMixed(t *testing.T) {
	g := Components(Line(10, 1), FromEdges(5, nil, BuildOptions{}))
	s := Summarize(g, 1)
	if s.Components != 6 {
		t.Fatalf("components=%d want 6", s.Components)
	}
	if s.Isolated != 5 {
		t.Fatalf("isolated=%d want 5", s.Isolated)
	}
	if s.LargestComp != 10 {
		t.Fatalf("largest=%d want 10", s.LargestComp)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(FromEdges(0, nil, BuildOptions{}), 1)
	if s.Vertices != 0 || s.Components != 0 {
		t.Fatalf("%+v", s)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	for name, g := range map[string]*Graph{
		"line":     Line(200, 1),
		"rmat":     RMat(8, RMatOptions{EdgeFactor: 4, Seed: 2}),
		"empty":    FromEdges(0, nil, BuildOptions{}),
		"isolated": FromEdges(7, nil, BuildOptions{}),
	} {
		var buf bytes.Buffer
		if err := g.WriteBinary(&buf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.N != g.N || got.NumDirected() != g.NumDirected() {
			t.Fatalf("%s: shape mismatch", name)
		}
		for i := range g.Offs {
			if got.Offs[i] != g.Offs[i] {
				t.Fatalf("%s: offset %d", name, i)
			}
		}
		for i := range g.Adj {
			if got.Adj[i] != g.Adj[i] {
				t.Fatalf("%s: adj %d", name, i)
			}
		}
	}
}

func TestBinaryRejectsCorruption(t *testing.T) {
	g := Line(50, 1)
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	// Bad magic.
	bad := append([]byte(nil), good...)
	bad[0] = 'X'
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Truncations at every boundary region.
	for _, cut := range []int{4, 12, 20, 60, len(good) - 3} {
		if _, err := ReadBinary(bytes.NewReader(good[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// Corrupt an edge target to out-of-range.
	bad = append([]byte(nil), good...)
	bad[len(bad)-4] = 0xFF
	bad[len(bad)-3] = 0xFF
	bad[len(bad)-2] = 0xFF
	bad[len(bad)-1] = 0x7F
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
}

func TestVerifyLabelingAcceptsCorrect(t *testing.T) {
	for name, g := range map[string]*Graph{
		"line":  Line(500, 1),
		"multi": Components(Line(50, 2), Grid3D(4, 3), FromEdges(9, nil, BuildOptions{})),
		"empty": FromEdges(0, nil, BuildOptions{}),
	} {
		if err := VerifyLabeling(g, RefCC(g)); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestVerifyLabelingRejectsWrong(t *testing.T) {
	g := FromEdges(4, []Edge{{0, 1}, {2, 3}}, BuildOptions{})
	correct := RefCC(g) // [0,0,2,2]

	// Wrong length.
	if VerifyLabeling(g, correct[:2]) == nil {
		t.Fatal("short labeling accepted")
	}
	// Out of range.
	if VerifyLabeling(g, []int32{0, 0, 2, 9}) == nil {
		t.Fatal("out-of-range accepted")
	}
	// Non-canonical: labels[3]=2 but vertex 3's own label points elsewhere.
	if VerifyLabeling(g, []int32{0, 0, 3, 2}) == nil {
		t.Fatal("non-canonical accepted")
	}
	// Valid alternative canonical choice must be accepted.
	if err := VerifyLabeling(g, []int32{1, 1, 2, 2}); err != nil {
		t.Fatalf("valid labeling rejected: %v", err)
	}
	// Inconsistent across an edge.
	if VerifyLabeling(g, []int32{0, 2, 2, 2}) == nil {
		t.Fatal("edge-crossing labels accepted")
	}
	// Merged: two components share one label (0 and 2 both labeled 0).
	// Consistency holds on every edge, but class 0 is disconnected.
	if VerifyLabeling(g, []int32{0, 0, 0, 0}) == nil {
		t.Fatal("merged components accepted")
	}
}

func TestComponentSummary(t *testing.T) {
	labels := []int32{7, 7, 7, 2, 2, 9, 9, 9, 4}
	count, top := ComponentSummary(labels, 2)
	if count != 4 {
		t.Fatalf("count = %d want 4", count)
	}
	want := []ComponentSize{{Label: 7, Size: 3}, {Label: 9, Size: 3}}
	if len(top) != 2 || top[0] != want[0] || top[1] != want[1] {
		t.Fatalf("top = %+v want %+v (size desc, ties by label asc)", top, want)
	}
	// k <= 0 returns every component, still sorted.
	count, all := ComponentSummary(labels, 0)
	if count != 4 || len(all) != 4 || all[3] != (ComponentSize{Label: 4, Size: 1}) {
		t.Fatalf("all = %+v", all)
	}
	if c, top := ComponentSummary(nil, 3); c != 0 || len(top) != 0 {
		t.Fatalf("empty labeling: %d %+v", c, top)
	}
}
