package graph

import (
	"testing"
)

func TestFromEdgesBasic(t *testing.T) {
	g := FromEdges(4, []Edge{{0, 1}, {1, 2}, {2, 3}}, BuildOptions{})
	if g.N != 4 || g.NumDirected() != 6 || g.NumUndirected() != 3 {
		t.Fatalf("n=%d m=%d", g.N, g.NumDirected())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Degree(0) != 1 || g.Degree(1) != 2 || g.Degree(3) != 1 {
		t.Fatalf("degrees: %d %d %d %d", g.Degree(0), g.Degree(1), g.Degree(2), g.Degree(3))
	}
	nbr := g.Neighbors(1)
	if len(nbr) != 2 || nbr[0] != 0 || nbr[1] != 2 {
		t.Fatalf("Neighbors(1)=%v", nbr)
	}
}

func TestFromEdgesDropsSelfLoops(t *testing.T) {
	g := FromEdges(3, []Edge{{0, 0}, {1, 1}, {0, 1}}, BuildOptions{})
	if g.NumUndirected() != 1 {
		t.Fatalf("m=%d want 1", g.NumUndirected())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFromEdgesDuplicates(t *testing.T) {
	dup := []Edge{{0, 1}, {0, 1}, {1, 0}}
	kept := FromEdges(2, dup, BuildOptions{})
	if kept.NumUndirected() != 3 {
		t.Fatalf("kept m=%d want 3", kept.NumUndirected())
	}
	dedup := FromEdges(2, dup, BuildOptions{RemoveDuplicates: true})
	if dedup.NumUndirected() != 1 {
		t.Fatalf("dedup m=%d want 1", dedup.NumUndirected())
	}
	if err := kept.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := dedup.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFromEdgesIsolatedVertices(t *testing.T) {
	g := FromEdges(10, []Edge{{7, 8}}, BuildOptions{})
	if g.N != 10 {
		t.Fatalf("n=%d", g.N)
	}
	for v := int32(0); v < 7; v++ {
		if g.Degree(v) != 0 {
			t.Fatalf("degree(%d)=%d", v, g.Degree(v))
		}
	}
	if g.Degree(7) != 1 || g.Degree(8) != 1 || g.Degree(9) != 0 {
		t.Fatal("wrong degrees around the single edge")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFromEdgesEmpty(t *testing.T) {
	g := FromEdges(0, nil, BuildOptions{})
	if g.N != 0 || g.NumDirected() != 0 {
		t.Fatal("empty graph malformed")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	g1 := FromEdges(1, nil, BuildOptions{})
	if g1.N != 1 || g1.Degree(0) != 0 {
		t.Fatal("single-vertex graph malformed")
	}
}

func TestFromEdgesOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	FromEdges(2, []Edge{{0, 2}}, BuildOptions{})
}

func TestCloneIndependent(t *testing.T) {
	g := FromEdges(3, []Edge{{0, 1}, {1, 2}}, BuildOptions{})
	cp := g.Clone()
	cp.Adj[0] = 2
	if g.Adj[0] == 2 && g.Adj[0] == cp.Adj[0] && &g.Adj[0] == &cp.Adj[0] {
		t.Fatal("clone shares storage")
	}
	g2 := FromEdges(3, []Edge{{0, 1}, {1, 2}}, BuildOptions{})
	for i := range g2.Adj {
		if g.Adj[i] != g2.Adj[i] {
			return // g unchanged relative to fresh build is what matters
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := FromEdges(3, []Edge{{0, 1}, {1, 2}}, BuildOptions{})
	bad := g.Clone()
	bad.Adj[0] = 99
	if bad.Validate() == nil {
		t.Fatal("out-of-range target not caught")
	}
	bad2 := g.Clone()
	bad2.Offs[1] = 100
	if bad2.Validate() == nil {
		t.Fatal("bad offset not caught")
	}
	bad3 := g.Clone()
	bad3.Adj[0] = 2 // breaks symmetry: edge (0,2) has no reverse
	if bad3.Validate() == nil {
		t.Fatal("asymmetry not caught")
	}
}

func TestMaxDegree(t *testing.T) {
	g := Star(10)
	if g.MaxDegree() != 9 {
		t.Fatalf("star max degree=%d want 9", g.MaxDegree())
	}
	empty := &Graph{N: 0, Offs: []int64{0}}
	if empty.MaxDegree() != 0 {
		t.Fatal("empty max degree != 0")
	}
}

func TestRefCCLine(t *testing.T) {
	g := FromEdges(5, []Edge{{0, 1}, {1, 2}, {3, 4}}, BuildOptions{})
	labels := RefCC(g)
	if NumComponentsOf(labels) != 2 {
		t.Fatalf("components=%d want 2", NumComponentsOf(labels))
	}
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Fatal("0,1,2 not same component")
	}
	if labels[3] != labels[4] || labels[0] == labels[3] {
		t.Fatal("3,4 mislabeled")
	}
}

func TestRefCCIsolated(t *testing.T) {
	g := FromEdges(3, nil, BuildOptions{})
	labels := RefCC(g)
	if NumComponentsOf(labels) != 3 {
		t.Fatalf("components=%d want 3", NumComponentsOf(labels))
	}
}

func TestSamePartition(t *testing.T) {
	a := []int32{0, 0, 1, 1}
	b := []int32{5, 5, 9, 9}
	if !SamePartition(a, b) {
		t.Fatal("equivalent partitions reported different")
	}
	c := []int32{5, 5, 5, 9}
	if SamePartition(a, c) {
		t.Fatal("different partitions reported same")
	}
	d := []int32{5, 9, 5, 9}
	if SamePartition(a, d) {
		t.Fatal("crossed partitions reported same")
	}
	if SamePartition(a, []int32{1}) {
		t.Fatal("length mismatch reported same")
	}
}

func TestBFSDistancesLine(t *testing.T) {
	g := FromEdges(4, []Edge{{0, 1}, {1, 2}, {2, 3}}, BuildOptions{})
	d := BFSDistances(g, 0)
	for i, want := range []int32{0, 1, 2, 3} {
		if d[i] != want {
			t.Fatalf("d[%d]=%d want %d", i, d[i], want)
		}
	}
	g2 := FromEdges(3, []Edge{{0, 1}}, BuildOptions{})
	d2 := BFSDistances(g2, 0)
	if d2[2] != -1 {
		t.Fatal("unreachable vertex not -1")
	}
}

func TestInducedSubgraphCheck(t *testing.T) {
	g := FromEdges(4, []Edge{{0, 1}, {1, 2}, {2, 3}}, BuildOptions{})
	labels := []int32{0, 0, 1, 1}
	if cut := InducedSubgraphCheck(g, labels); cut != 2 {
		t.Fatalf("cut=%d want 2 (edge 1-2 in both directions)", cut)
	}
}

func TestComponentSizesOf(t *testing.T) {
	sizes := ComponentSizesOf([]int32{1, 1, 2, 1})
	if sizes[1] != 3 || sizes[2] != 1 {
		t.Fatalf("sizes=%v", sizes)
	}
}

func TestFromDirectedPairs(t *testing.T) {
	// pairs for the single undirected edge {0,1} plus a duplicate.
	pairs := []uint64{0<<32 | 1, 1 << 32, 0<<32 | 1, 1 << 32}
	g := FromDirectedPairs(2, pairs, true, 1)
	if g.NumUndirected() != 1 {
		t.Fatalf("m=%d", g.NumUndirected())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	kept := FromDirectedPairs(2, append([]uint64(nil), 0<<32|1, 1<<32, 0<<32|1, 1<<32), false, 1)
	if kept.NumUndirected() != 2 {
		t.Fatalf("kept m=%d", kept.NumUndirected())
	}
}
