package graph

import (
	"parconn/internal/intsort"
	"parconn/internal/parallel"
)

// sortPairs sorts packed (u,v) directed-edge pairs by (u,v). Only the bits
// that can be non-zero given n are sorted, so the radix sort does the
// minimum number of passes.
func sortPairs(procs int, pairs []uint64, n int) {
	if n < 1 {
		n = 1
	}
	vbits := intsort.Bits(uint64(n - 1))
	// Keys occupy the low vbits of each half-word; the high half starts at
	// bit 32 regardless, so significant width is 32 + vbits.
	intsort.SortUint64(procs, pairs, 32+vbits)
}

// uniqueSorted removes adjacent duplicates from a sorted slice.
func uniqueSorted(procs int, pairs []uint64) []uint64 {
	return parallel.Pack(procs, pairs, func(i int) bool {
		return i == 0 || pairs[i] != pairs[i-1]
	})
}
