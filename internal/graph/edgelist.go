package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadEdgeList parses the whitespace-separated edge-list format used by
// SNAP (https://snap.stanford.edu) — the source of the paper's com-Orkut
// graph — and by many other graph repositories:
//
//	# comment lines start with '#' (or '%')
//	<u> <v>
//	...
//
// Vertex ids may be arbitrary non-negative integers; they are compacted to
// a dense [0, n) range in first-appearance order. The graph is
// symmetrized, self-loops are dropped, and duplicates are removed. Use it
// to run this library on the paper's real inputs:
//
//	f, _ := os.Open("com-orkut.ungraph.txt")
//	g, _ := graph.ReadEdgeList(f)
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	remap := make(map[int64]int32)
	var edges []Edge
	lineNo := 0
	mapID := func(raw int64) int32 {
		id, ok := remap[raw]
		if !ok {
			id = int32(len(remap))
			remap[raw] = id
		}
		return id
	}
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: edge list line %d: need two ids, got %q", lineNo, line)
		}
		u, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graph: edge list line %d: %w", lineNo, err)
		}
		v, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graph: edge list line %d: %w", lineNo, err)
		}
		if u < 0 || v < 0 {
			return nil, fmt.Errorf("graph: edge list line %d: negative id", lineNo)
		}
		if len(remap) >= 1<<31-4 {
			return nil, fmt.Errorf("graph: edge list has too many distinct vertices")
		}
		edges = append(edges, Edge{mapID(u), mapID(v)})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return FromEdges(len(remap), edges, BuildOptions{RemoveDuplicates: true}), nil
}

// WriteEdgeList writes g as a SNAP-style edge list (each undirected edge
// once, smaller endpoint first).
func (g *Graph) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	fmt.Fprintf(bw, "# Undirected graph: %d vertices, %d edges\n", g.N, g.NumUndirected())
	buf := make([]byte, 0, 24)
	for u := 0; u < g.N; u++ {
		for _, v := range g.Neighbors(int32(u)) {
			if v > int32(u) {
				buf = strconv.AppendInt(buf[:0], int64(u), 10)
				buf = append(buf, '\t')
				buf = strconv.AppendInt(buf, int64(v), 10)
				buf = append(buf, '\n')
				if _, err := bw.Write(buf); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}
