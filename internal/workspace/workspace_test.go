package workspace

import (
	"sync"
	"testing"
)

// TestRoundTripReuse checks the core recycling property: a released buffer
// is handed back (same backing array) to the next fitting request, and a
// smaller next-level request finds a larger class's buffer.
func TestRoundTripReuse(t *testing.T) {
	a := New()
	s := a.Int32(1000)
	if len(s) != 1000 {
		t.Fatalf("len = %d, want 1000", len(s))
	}
	s[0] = 42
	a.PutInt32(s)
	// Class 10 is small: the release parks in the spare slot, which is
	// exempt from retained accounting.
	if got := a.Retained(); got != 0 {
		t.Fatalf("small release accounted %d retained bytes, want 0 (spare slot)", got)
	}

	// Same-size request: must reuse the pooled array, not allocate.
	r := a.Int32(900)
	if &r[0] != &s[0] {
		t.Fatal("same-class Acquire did not reuse the released buffer")
	}
	a.PutInt32(r)

	// A next-level (smaller) request within the search window also reuses.
	q := a.Int32(200) // class 8 vs. pooled class 10: within searchUp
	if &q[0] != &s[0] {
		t.Fatal("smaller Acquire within search window did not reuse")
	}
	a.PutInt32(q)
}

// TestAcquireContentsAreDirty documents the contract that buffers come back
// with old contents: callers must initialize.
func TestAcquireContentsAreDirty(t *testing.T) {
	a := New()
	s := a.Int64(64)
	for i := range s {
		s[i] = int64(i) + 7
	}
	a.PutInt64(s)
	r := a.Int64(64)
	if r[10] != 17 {
		t.Fatalf("expected dirty reuse (r[10]=17 from prior fill), got %d", r[10])
	}
}

// TestNoAliasingBetweenOutstanding checks two live acquisitions never share
// memory, across every type the arena serves.
func TestNoAliasingBetweenOutstanding(t *testing.T) {
	a := New()
	x := a.Int32(512)
	y := a.Int32(512)
	if &x[0] == &y[0] {
		t.Fatal("two outstanding Int32 buffers alias")
	}
	u := a.Uint64(512)
	v := a.Uint64(512)
	if &u[0] == &v[0] {
		t.Fatal("two outstanding Uint64 buffers alias")
	}
	// Release then re-acquire twice: still distinct.
	a.PutInt32(x)
	a.PutInt32(y)
	x2 := a.Int32(512)
	y2 := a.Int32(512)
	if &x2[0] == &y2[0] {
		t.Fatal("re-acquired buffers alias")
	}
	// Cross-type must never share (independent banks).
	f := a.Float64(512)
	for i := range f {
		f[i] = 1.5
	}
	if u[0] == 0 { // appease the compiler about u liveness
		_ = v
	}
}

// TestSizeClassRounding checks capacities are class-rounded so recycling is
// exact, and oversize requests still work.
func TestSizeClassRounding(t *testing.T) {
	a := New()
	s := a.Int32(1000)
	if cap(s) != 1024 {
		t.Fatalf("cap = %d, want class-rounded 1024", cap(s))
	}
	one := a.Int32(1)
	if len(one) != 1 || cap(one) < 1 {
		t.Fatalf("n=1: len=%d cap=%d", len(one), cap(one))
	}
	if a.Int32(0) != nil {
		t.Fatal("n=0 should return nil")
	}
	a.PutInt32(nil) // must be a no-op
}

// TestRetainedLimit checks the soft cap: releases past the limit drop the
// buffer instead of growing the pool.
func TestRetainedLimit(t *testing.T) {
	a := NewLimit(4096)  // bytes
	big := a.Int32(4096) // 16 KiB > limit
	a.PutInt32(big)
	if got := a.Retained(); got != 0 {
		t.Fatalf("over-limit release retained %d bytes, want 0", got)
	}
	// Small buffers fill the one-slot spare (unaccounted) first; the second
	// release of the same class lands in the free list and is accounted.
	s1 := a.Int32(256)
	s2 := a.Int32(256)
	a.PutInt32(s1)
	a.PutInt32(s2)
	if got := a.Retained(); got != 1024 {
		t.Fatalf("retained %d bytes, want 1024 (one 1 KiB buffer past the spare)", got)
	}
	a.Reset()
	if a.Retained() != 0 {
		t.Fatal("Reset did not clear retained bytes")
	}
}

// TestSmallSpareBypassesLimit checks threshold-aware release: a small-class
// buffer is recycled through the spare slot even when the arena is at its
// retained cap, and the spare hands back the same backing array.
func TestSmallSpareBypassesLimit(t *testing.T) {
	a := NewLimit(64) // effectively full for any release
	s := a.Int32(256)
	a.PutInt32(s)
	if got := a.Retained(); got != 0 {
		t.Fatalf("spare release accounted %d bytes, want 0", got)
	}
	r := a.Int32(256)
	if &r[0] != &s[0] {
		t.Fatal("full arena did not recycle the small buffer through the spare")
	}
	// Reset drops the spare slots too.
	a.PutInt32(r)
	a.Reset()
	q := a.Int32(256)
	if &q[0] == &s[0] {
		t.Fatal("Reset did not clear the spare slot")
	}
}

// TestConcurrentAcquireRelease hammers one arena from many goroutines; run
// under -race this checks the locking, and the per-buffer write pattern
// checks exclusivity (no two holders of the same array at once).
func TestConcurrentAcquireRelease(t *testing.T) {
	a := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(tag int32) {
			defer wg.Done()
			for iter := 0; iter < 200; iter++ {
				s := a.Int32(300 + int(tag))
				for i := range s {
					s[i] = tag
				}
				for i := range s {
					if s[i] != tag {
						t.Errorf("buffer shared between holders: got %d want %d", s[i], tag)
						return
					}
				}
				a.PutInt32(s)
			}
		}(int32(g))
	}
	wg.Wait()
}

// BenchmarkAcquireRelease measures the steady-state cost of the arena path
// (should be two mutex ops and no allocation after warm-up).
func BenchmarkAcquireRelease(b *testing.B) {
	a := New()
	warm := a.Int32(1 << 16)
	a.PutInt32(warm)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := a.Int32(1 << 16)
		a.PutInt32(s)
	}
}
