// Package workspace provides a reusable scratch arena for the large flat
// slices the connectivity algorithm churns through: frontier buffers, delta
// and start arrays, contraction pair lists, relabel maps, and hash-table
// slots. The recursion allocates these once per level and frees them on the
// way back up; because contracted graphs shrink geometrically, the level-0
// working set bounds the memory of the whole run — so recycling buffers
// across levels (and across repeated CC calls) turns the per-level
// allocation traffic into a small warm-up cost.
//
// Buffers are bucketed by power-of-two capacity class. Acquire rounds the
// request up to its class and also searches a few larger classes, so a
// buffer acquired for level k is found again by the smaller request at
// level k+1 instead of forcing a fresh allocation. Returned buffers are
// DIRTY: callers own initialization (the algorithm overwrites almost every
// buffer fully; the two exceptions — isCenter and present in contraction —
// zero-fill explicitly).
//
// Ownership rules: a buffer obtained from Acquire is exclusively owned
// until passed to the matching Put; Put transfers ownership back to the
// arena, after which any use (or second Put) of the slice is a bug — the
// arena will hand the same memory to the next Acquire. All methods are
// safe for concurrent use, but the intended pattern is coarse: acquire at
// the start of a level or phase, release at its end, never inside inner
// loops.
package workspace

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

// numClasses bounds the largest recyclable capacity at 2^(numClasses-1)
// elements; anything larger is serviced by plain make and dropped on Put.
const numClasses = 48

// searchUp is how many classes above the exact fit Acquire scans. Levels
// shrink by at least a constant factor per contraction, so a small window
// lets level k+1 reuse level k's buffers without unbounded internal
// fragmentation (at most 2^searchUp x the requested size).
const searchUp = 3

// DefaultLimit is the default soft cap on bytes retained by an arena.
// Buffers released past the cap are dropped for the GC instead of pooled.
const DefaultLimit = int64(1) << 30

// smallClassMax is the largest capacity class (2^smallClassMax elements)
// treated as "small": release stashes such buffers in a per-class one-slot
// spare that skips the retained-bytes accounting and the limit check, and
// acquire probes that slot before scanning the free lists. The recursion's
// tiny tail levels (which now run serially, see parallel.Tuner.SerialLevel)
// churn through many sub-2048-element buffers per level; their aggregate
// bytes are noise next to the level-0 working set, so exempting them keeps
// the fast path one probe and makes the cap a statement about big buffers
// only.
const smallClassMax = 11

// bank holds the free buffers of one element type, indexed by
// floor(log2(capacity)); every buffer in class d has capacity >= 2^d.
// spare is the small-class one-slot stash (unused above smallClassMax).
type bank[T any] struct {
	free  [numClasses][][]T
	spare [smallClassMax + 1][]T
}

// classOf returns ceil(log2(n)) clamped to the class range: the lowest
// class whose every buffer is guaranteed to hold n elements.
func classOf(n int) int {
	if n <= 1 {
		return 0
	}
	c := bits.Len(uint(n - 1))
	if c >= numClasses {
		c = numClasses - 1
	}
	return c
}

// Arena is a size-class-bucketed recycler for scratch slices. The zero
// value is not usable; construct with New or NewLimit, or share Default.
type Arena struct {
	mu       sync.Mutex
	limit    int64
	retained int64

	// reused/allocd are cumulative byte counters behind Stats, kept atomic
	// so Acquire's fresh-make path can count outside the mutex.
	reused atomic.Int64
	allocd atomic.Int64

	i32 bank[int32]
	i64 bank[int64]
	u64 bank[uint64]
	f64 bank[float64]
}

// New returns an arena with the default retained-bytes cap.
func New() *Arena { return NewLimit(DefaultLimit) }

// NewLimit returns an arena that stops pooling released buffers once it
// retains limit bytes (limit <= 0 means DefaultLimit). The cap is soft:
// outstanding acquired buffers are not counted, only idle pooled ones.
func NewLimit(limit int64) *Arena {
	if limit <= 0 {
		limit = DefaultLimit
	}
	//parconn:allow hotalloc arena construction is one-time setup
	return &Arena{limit: limit}
}

var defaultArena struct {
	once sync.Once
	a    *Arena
}

// Default returns the shared process-wide arena used when callers do not
// supply their own.
func Default() *Arena {
	defaultArena.once.Do(func() { defaultArena.a = New() })
	return defaultArena.a
}

// acquire pops a pooled buffer able to hold n elements of b's type, or
// allocates one with class-rounded capacity so it recycles cleanly.
func acquire[T any](a *Arena, b *bank[T], elemSize int64, n int) []T {
	if n <= 0 {
		return nil
	}
	c := classOf(n)
	top := min(c+searchUp+1, numClasses)
	a.mu.Lock()
	for d := c; d < top; d++ {
		// Small-class spare first: it holds the most recently released
		// buffer of class d, unaccounted in retained.
		if d <= smallClassMax {
			if s := b.spare[d]; s != nil {
				b.spare[d] = nil
				a.mu.Unlock()
				a.reused.Add(int64(cap(s)) * elemSize)
				return s[:n]
			}
		}
		if k := len(b.free[d]); k > 0 {
			s := b.free[d][k-1]
			b.free[d][k-1] = nil
			b.free[d] = b.free[d][:k-1]
			a.retained -= int64(cap(s)) * elemSize
			a.mu.Unlock()
			a.reused.Add(int64(cap(s)) * elemSize)
			return s[:n]
		}
	}
	a.mu.Unlock()
	capacity := 1 << c
	if capacity < n {
		capacity = n // request beyond the largest class
	}
	a.allocd.Add(int64(capacity) * elemSize)
	//parconn:allow hotalloc the documented fallback make when no pooled buffer fits; warm arenas serve from the free lists
	return make([]T, n, capacity)
}

// release returns s to the pool, or drops it if the arena is at its
// retained-bytes cap or s is empty.
func release[T any](a *Arena, b *bank[T], elemSize int64, s []T) {
	c := cap(s)
	if c == 0 {
		return
	}
	size := int64(c) * elemSize
	d := bits.Len(uint(c)) - 1
	if d >= numClasses {
		d = numClasses - 1
	}
	a.mu.Lock()
	if d <= smallClassMax && b.spare[d] == nil {
		// Threshold-aware release: small buffers park in the spare slot,
		// exempt from the retained cap (a full arena still recycles them).
		b.spare[d] = s[:0]
		a.mu.Unlock()
		return
	}
	if a.retained+size > a.limit {
		a.mu.Unlock()
		return
	}
	a.retained += size
	//parconn:allow hotalloc free-list growth amortizes; the steady state reuses the list's capacity
	b.free[d] = append(b.free[d], s[:0])
	a.mu.Unlock()
}

// Int32 returns an exclusively owned scratch []int32 of length n with
// UNSPECIFIED contents.
func (a *Arena) Int32(n int) []int32 { return acquire(a, &a.i32, 4, n) }

// PutInt32 releases a buffer obtained from Int32 back to the arena.
func (a *Arena) PutInt32(s []int32) { release(a, &a.i32, 4, s) }

// Int64 returns an exclusively owned scratch []int64 of length n with
// UNSPECIFIED contents.
func (a *Arena) Int64(n int) []int64 { return acquire(a, &a.i64, 8, n) }

// PutInt64 releases a buffer obtained from Int64 back to the arena.
func (a *Arena) PutInt64(s []int64) { release(a, &a.i64, 8, s) }

// Uint64 returns an exclusively owned scratch []uint64 of length n with
// UNSPECIFIED contents.
func (a *Arena) Uint64(n int) []uint64 { return acquire(a, &a.u64, 8, n) }

// PutUint64 releases a buffer obtained from Uint64 back to the arena.
func (a *Arena) PutUint64(s []uint64) { release(a, &a.u64, 8, s) }

// Float64 returns an exclusively owned scratch []float64 of length n with
// UNSPECIFIED contents.
func (a *Arena) Float64(n int) []float64 { return acquire(a, &a.f64, 8, n) }

// PutFloat64 releases a buffer obtained from Float64 back to the arena.
func (a *Arena) PutFloat64(s []float64) { release(a, &a.f64, 8, s) }

// Retained returns the bytes currently held in the arena's free lists
// (idle buffers only; outstanding acquisitions and the small-class spare
// slots are unaccounted).
func (a *Arena) Retained() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.retained
}

// Stats reports the cumulative bytes served from the free lists (reused)
// and freshly allocated (allocated) over the arena's lifetime. Callers
// wanting per-run numbers difference two snapshots.
func (a *Arena) Stats() (reused, allocated int64) {
	return a.reused.Load(), a.allocd.Load()
}

// Reset drops every pooled buffer, returning the arena to its initial
// empty state. Outstanding buffers remain valid and may still be Put.
func (a *Arena) Reset() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.i32 = bank[int32]{}
	a.i64 = bank[int64]{}
	a.u64 = bank[uint64]{}
	a.f64 = bank[float64]{}
	a.retained = 0
}
