// Streaming connectivity: edges arrive over time (a growing collaboration
// network) and component structure is maintained incrementally with the
// UnionFind API, with periodic snapshots — then cross-checked against a
// from-scratch ConnectedComponents run on the final graph.
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"log"

	"parconn"
)

func main() {
	// The "arrival stream": the edges of a power-law graph in random order,
	// mimicking collaborations forming over time.
	const scale = 15
	full := parconn.RMatGraph(scale, parconn.RMatOptions{EdgeFactor: 8, Seed: 9})
	n := full.NumVertices()
	var stream []parconn.Edge
	for v := int32(0); int(v) < n; v++ {
		for _, w := range full.Neighbors(v) {
			if w > v {
				stream = append(stream, parconn.Edge{U: v, V: w})
			}
		}
	}
	fmt.Printf("stream: %d vertices, %d edges arriving in %d batches\n\n",
		n, len(stream), 10)

	uf := parconn.NewUnionFind(n)
	components := n // every insertion that merges reduces the count by one
	fmt.Printf("%-8s %-12s %-12s %-10s\n", "batch", "edges seen", "components", "giant %")
	batch := len(stream) / 10
	for b := 0; b < 10; b++ {
		lo, hi := b*batch, (b+1)*batch
		if b == 9 {
			hi = len(stream)
		}
		for _, e := range stream[lo:hi] {
			if uf.Union(e.U, e.V) {
				components--
			}
		}
		// Snapshot: giant component share.
		labels := uf.Labels()
		sizes := parconn.ComponentSizes(labels)
		giant := 0
		for _, s := range sizes {
			if s > giant {
				giant = s
			}
		}
		fmt.Printf("%-8d %-12d %-12d %-10.1f\n", b+1, hi, components, 100*float64(giant)/float64(n))
	}

	// Cross-check the incremental state against a batch recomputation.
	batchLabels, err := parconn.ConnectedComponents(full, parconn.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	if parconn.NumComponents(batchLabels) != components {
		log.Fatalf("incremental (%d) and batch (%d) component counts disagree",
			components, parconn.NumComponents(batchLabels))
	}
	if err := parconn.VerifyLabeling(full, uf.Labels()); err != nil {
		log.Fatalf("incremental labeling failed verification: %v", err)
	}
	fmt.Println("\nincremental result verified against batch recomputation")
}
