// Streaming connectivity: edges arrive over time (a growing collaboration
// network) and component structure is maintained with parconn.Incremental —
// the concurrent, batched edge-insertion layer. The first half of the
// stream is labeled from scratch (the "nightly rebuild"); the second half
// arrives through Insert from several goroutines at once, with consistent
// Snapshots taken along the way — then the final state is cross-checked
// against a from-scratch ConnectedComponents run on the full graph.
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"log"
	"sync"

	"parconn"
)

func main() {
	// The "arrival stream": the edges of a power-law graph in random order,
	// mimicking collaborations forming over time.
	const scale = 15
	full := parconn.RMatGraph(scale, parconn.RMatOptions{EdgeFactor: 8, Seed: 9})
	n := full.NumVertices()
	var stream []parconn.Edge
	for v := int32(0); int(v) < n; v++ {
		for _, w := range full.Neighbors(v) {
			if w > v {
				stream = append(stream, parconn.Edge{U: v, V: w})
			}
		}
	}

	// Half the history already happened: label it with the full parallel
	// from-scratch algorithm and seed the incremental layer from the answer
	// array, exactly like a service would after its periodic rebuild.
	half := len(stream) / 2
	prefix, err := parconn.NewGraph(n, stream[:half], parconn.BuildOptions{})
	if err != nil {
		log.Fatal(err)
	}
	seed, err := parconn.ConnectedComponents(prefix, parconn.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	inc, err := parconn.NewIncrementalFromLabels(seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stream: %d vertices, %d edges; seeded from the first %d, streaming the rest\n\n",
		n, len(stream), half)

	// The remaining edges arrive in batches, inserted by several goroutines
	// concurrently — Incremental's unions are lock-free CAS operations, so
	// the writers need no coordination beyond the stream split.
	const writers = 4
	live := stream[half:]
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			const batch = 4096
			for lo := w * batch; lo < len(live); lo += writers * batch {
				hi := lo + batch
				if hi > len(live) {
					hi = len(live)
				}
				if _, err := inc.Insert(live[lo:hi]); err != nil {
					log.Fatal(err)
				}
			}
		}(w)
	}
	wg.Wait()

	// Snapshots are torn-free: this labeling reflects exactly the batches
	// applied up to its epoch, never half a batch.
	snap := inc.Snapshot()
	sizes := parconn.ComponentSizes(snap.Labels)
	giant := 0
	for _, s := range sizes {
		if s > giant {
			giant = s
		}
	}
	fmt.Printf("%-12s %-12s %-12s %-10s\n", "epoch", "edges", "components", "giant %")
	fmt.Printf("%-12d %-12d %-12d %-10.1f\n\n",
		snap.Epoch, int64(half)+snap.Edges, snap.Components, 100*float64(giant)/float64(n))

	// Cross-check the incremental state against a batch recomputation.
	batchLabels, err := parconn.ConnectedComponents(full, parconn.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	if parconn.NumComponents(batchLabels) != snap.Components {
		log.Fatalf("incremental (%d) and batch (%d) component counts disagree",
			snap.Components, parconn.NumComponents(batchLabels))
	}
	if err := parconn.VerifyLabeling(full, snap.Labels); err != nil {
		log.Fatalf("incremental labeling failed verification: %v", err)
	}
	fmt.Println("incremental result verified against batch recomputation")
}
