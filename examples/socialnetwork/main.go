// Social-network analysis: find the communities of a power-law friendship
// graph — the workload class (com-Orkut) the paper's evaluation features —
// and compare the decomposition algorithm against the baselines on it.
//
//	go run ./examples/socialnetwork
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"parconn"
)

func main() {
	// A synthetic social network: power-law degrees, low diameter, one
	// giant component plus a fringe of small ones — the regime where
	// direction-optimizing BFS shines and the decomposition algorithm must
	// stay competitive (paper Table 2, com-Orkut column).
	fmt.Println("generating synthetic social network (rMat at Orkut density)...")
	g := parconn.SocialGraph(16, 7)
	fmt.Printf("network: %d users, %d friendships, max degree %d\n\n",
		g.NumVertices(), g.NumEdges(), g.MaxDegree())

	labels, err := parconn.ConnectedComponents(g, parconn.Options{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	sizes := parconn.ComponentSizes(labels)
	type community struct {
		label int32
		size  int
	}
	communities := make([]community, 0, len(sizes))
	for l, s := range sizes {
		communities = append(communities, community{l, s})
	}
	sort.Slice(communities, func(i, j int) bool { return communities[i].size > communities[j].size })

	fmt.Printf("connected communities: %d\n", len(communities))
	giant := communities[0]
	fmt.Printf("giant component: %d users (%.1f%% of the network)\n",
		giant.size, 100*float64(giant.size)/float64(g.NumVertices()))
	singletons := 0
	for _, c := range communities {
		if c.size == 1 {
			singletons++
		}
	}
	fmt.Printf("isolated users: %d\n\n", singletons)

	// Head-to-head on this workload: the paper's algorithm vs the
	// strongest baselines (same labels, different work/depth profiles).
	for _, alg := range []parconn.Algorithm{
		parconn.DecompArbHybrid,
		parconn.HybridBFS,
		parconn.Multistep,
		parconn.ParallelSFPRM,
		parconn.SerialSF,
	} {
		start := time.Now()
		got, err := parconn.ConnectedComponents(g, parconn.Options{Algorithm: alg, Seed: 7})
		if err != nil {
			log.Fatal(err)
		}
		if parconn.NumComponents(got) != len(communities) {
			log.Fatalf("%s disagrees on the component count", alg)
		}
		fmt.Printf("%-22s %8.1fms\n", alg.String(), float64(time.Since(start).Microseconds())/1000)
	}
}
