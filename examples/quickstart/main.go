// Quickstart: build a graph, label its connected components, inspect them.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"parconn"
)

func main() {
	// A small hand-built graph: two triangles joined by a bridge, one
	// separate edge, and one isolated vertex.
	//
	//	0-1-2-0   3-4-5-3   2-3 (bridge)   6-7   8
	edges := []parconn.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0},
		{U: 3, V: 4}, {U: 4, V: 5}, {U: 5, V: 3},
		{U: 2, V: 3},
		{U: 6, V: 7},
	}
	g, err := parconn.NewGraph(9, edges, parconn.BuildOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// The zero Options select decomp-arb-hybrid-CC, the paper's fastest
	// variant: expected linear work, polylogarithmic depth.
	labels, err := parconn.ConnectedComponents(g, parconn.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("graph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())
	fmt.Printf("components: %d\n", parconn.NumComponents(labels))
	for v, l := range labels {
		fmt.Printf("  vertex %d -> component %d\n", v, l)
	}
	if parconn.SameComponent(labels, 0, 5) {
		fmt.Println("0 and 5 are connected (via the 2-3 bridge)")
	}
	if !parconn.SameComponent(labels, 0, 8) {
		fmt.Println("8 is isolated")
	}

	// The same call scales to millions of edges.
	big := parconn.RandomGraph(1_000_000, 5, 42)
	labels, err = parconn.ConnectedComponents(big, parconn.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%v has %d component(s)\n", big, parconn.NumComponents(labels))
}
