// Image segmentation by connected-component labeling — one of the two
// applications the paper's introduction motivates ("image analysis for
// computer vision"): pixels become vertices, adjacent pixels with similar
// intensity become edges, and the connected components are the segments.
//
//	go run ./examples/imagesegment
package main

import (
	"fmt"
	"log"
	"math"

	"parconn"
)

const (
	width, height = 512, 512
	// Adjacent pixels whose intensity differs by at most this are joined.
	threshold = 0.08
)

// intensity renders a synthetic scene: three blobs of different brightness
// on a dark background with a soft gradient.
func intensity(x, y int) float64 {
	fx, fy := float64(x)/width, float64(y)/height
	v := 0.05 + 0.02*fy // background with a mild gradient
	blob := func(cx, cy, r, level float64) {
		d := math.Hypot(fx-cx, fy-cy)
		if d < r {
			v = level
		}
	}
	blob(0.30, 0.30, 0.18, 0.85) // bright disk
	blob(0.72, 0.40, 0.12, 0.55) // mid-gray disk
	blob(0.50, 0.75, 0.15, 0.30) // dim disk
	return v
}

func main() {
	// Build the pixel-adjacency graph: 4-connectivity, thresholded on
	// intensity difference.
	pix := make([]float64, width*height)
	for y := 0; y < height; y++ {
		for x := 0; x < width; x++ {
			pix[y*width+x] = intensity(x, y)
		}
	}
	id := func(x, y int) int32 { return int32(y*width + x) }
	edges := make([]parconn.Edge, 0, 2*width*height)
	for y := 0; y < height; y++ {
		for x := 0; x < width; x++ {
			if x+1 < width && math.Abs(pix[id(x, y)]-pix[id(x+1, y)]) <= threshold {
				edges = append(edges, parconn.Edge{U: id(x, y), V: id(x+1, y)})
			}
			if y+1 < height && math.Abs(pix[id(x, y)]-pix[id(x, y+1)]) <= threshold {
				edges = append(edges, parconn.Edge{U: id(x, y), V: id(x, y+1)})
			}
		}
	}
	g, err := parconn.NewGraph(width*height, edges, parconn.BuildOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("image: %dx%d, adjacency graph: %d vertices, %d edges\n",
		width, height, g.NumVertices(), g.NumEdges())

	labels, err := parconn.ConnectedComponents(g, parconn.Options{Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	compact, k := parconn.CompactLabels(labels)
	sizes := parconn.ComponentSizes(labels)
	fmt.Printf("segments: %d\n", k)
	// Report the segments big enough to be "objects" (>0.5% of pixels).
	min := width * height / 200
	objects := 0
	for l, s := range sizes {
		if s >= min {
			objects++
			x, y := int(l)%width, int(l)/width
			fmt.Printf("  segment anchored near (%d,%d): %d pixels (intensity %.2f)\n",
				x, y, s, pix[l])
		}
	}
	fmt.Printf("large segments (objects + background): %d\n", objects)

	// Downsampled ASCII rendering of the segmentation.
	fmt.Println("\nsegmentation preview (one char per 16x16 block):")
	glyphs := "#@*+=-:. abcdefghijklmnop"
	for y := 0; y < height; y += 16 {
		row := make([]byte, 0, width/16)
		for x := 0; x < width; x += 16 {
			row = append(row, glyphs[int(compact[id(x, y)])%len(glyphs)])
		}
		fmt.Println(string(row))
	}
}
