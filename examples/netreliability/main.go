// Network reliability: how does a communication network fragment as links
// fail? Connectivity is recomputed after each failure wave, tracking the
// giant component and the number of fragments — a classic systems use of
// fast connected-components (paper §1: "VLSI design", network analysis).
//
//	go run ./examples/netreliability
package main

import (
	"fmt"
	"log"

	"parconn"
)

func main() {
	// The intact network: a 3D torus, like a machine-room interconnect.
	const side = 40
	base := parconn.Grid3DGraph(side, 11)
	n := base.NumVertices()
	fmt.Printf("interconnect: %d nodes, %d links (3D torus %dx%dx%d)\n\n",
		n, base.NumEdges(), side, side, side)

	// Collect the undirected link list once.
	links := make([]parconn.Edge, 0, base.NumEdges())
	for v := int32(0); int(v) < n; v++ {
		for _, w := range base.Neighbors(v) {
			if w > v {
				links = append(links, parconn.Edge{U: v, V: w})
			}
		}
	}

	fmt.Printf("%-12s %-12s %-14s %-12s\n", "failure rate", "fragments", "giant comp", "isolated")
	rng := uint64(0x9e3779b97f4a7c15)
	next := func() uint64 { rng ^= rng << 13; rng ^= rng >> 7; rng ^= rng << 17; return rng }
	for _, failPct := range []int{0, 10, 20, 30, 40, 50, 60, 70, 75, 80, 85, 90} {
		alive := make([]parconn.Edge, 0, len(links))
		for _, e := range links {
			if int(next()%100) >= failPct {
				alive = append(alive, e)
			}
		}
		g, err := parconn.NewGraph(n, alive, parconn.BuildOptions{})
		if err != nil {
			log.Fatal(err)
		}
		labels, err := parconn.ConnectedComponents(g, parconn.Options{Seed: uint64(failPct)})
		if err != nil {
			log.Fatal(err)
		}
		sizes := parconn.ComponentSizes(labels)
		giant, isolated := 0, 0
		for _, s := range sizes {
			if s > giant {
				giant = s
			}
			if s == 1 {
				isolated++
			}
		}
		fmt.Printf("%-12s %-12d %-14s %-12d\n",
			fmt.Sprintf("%d%%", failPct),
			len(sizes),
			fmt.Sprintf("%d (%.1f%%)", giant, 100*float64(giant)/float64(n)),
			isolated)
	}
	fmt.Println("\nThe torus has a percolation threshold: the giant component survives")
	fmt.Println("well past 50% link failure, then collapses sharply — each row above")
	fmt.Println("is one full connectivity run over the surviving links.")
}
