package parconn

import (
	"bytes"
	"math"
	"testing"
)

var decompAlgorithms = []Algorithm{DecompArbHybrid, DecompArb, DecompMin}

// TestTraceEdgeDecay checks the paper's geometric-decay direction on real
// traces: each recursion level's incoming edge count never exceeds the
// previous level's, and no level emits more edges than it received.
func TestTraceEdgeDecay(t *testing.T) {
	graphs := map[string]*Graph{
		"rmat": RMatGraph(10, RMatOptions{EdgeFactor: 8, Seed: 11}),
		"line": LineGraph(3000, 1),
	}
	for gname, g := range graphs {
		for _, alg := range decompAlgorithms {
			tr := NewTrace()
			labels, err := ConnectedComponents(g, Options{Algorithm: alg, Seed: 7, Recorder: tr})
			if err != nil {
				t.Fatalf("%s/%v: %v", gname, alg, err)
			}
			if err := VerifyLabeling(g, labels); err != nil {
				t.Fatalf("%s/%v: %v", gname, alg, err)
			}
			ends := tr.LevelEnds()
			if len(ends) == 0 {
				t.Fatalf("%s/%v: no level events", gname, alg)
			}
			prev := int64(math.MaxInt64)
			for i, e := range ends {
				if e.EdgesIn > prev {
					t.Fatalf("%s/%v: level %d edges_in %d > previous %d", gname, alg, e.Level, e.EdgesIn, prev)
				}
				if e.EdgesOut > e.EdgesIn {
					t.Fatalf("%s/%v: level %d edges_out %d > edges_in %d", gname, alg, e.Level, e.EdgesOut, e.EdgesIn)
				}
				if i > 0 && e.EdgesIn != ends[i-1].EdgesOut {
					t.Fatalf("%s/%v: level %d edges_in %d != previous edges_out %d",
						gname, alg, e.Level, e.EdgesIn, ends[i-1].EdgesOut)
				}
				prev = e.EdgesIn
			}
			// The full structural validator must agree.
			if _, err := ValidateTraceEvents(tr.Events()); err != nil {
				t.Fatalf("%s/%v: %v", gname, alg, err)
			}
		}
	}
}

// TestTraceBracketing checks run_start/run_end bracketing for every
// algorithm (baselines get run-level coverage from the public wrapper).
func TestTraceBracketing(t *testing.T) {
	g := RMatGraph(8, RMatOptions{EdgeFactor: 6, Seed: 3})
	for _, alg := range Algorithms {
		tr := NewTrace()
		labels, err := ConnectedComponents(g, Options{Algorithm: alg, Seed: 5, Recorder: tr})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		evs := tr.Events()
		if len(evs) < 2 {
			t.Fatalf("%v: %d events", alg, len(evs))
		}
		start, ok := evs[0].V.(RunStart)
		if !ok {
			t.Fatalf("%v: first event %T", alg, evs[0].V)
		}
		if start.Algorithm != alg.String() || start.Vertices != g.NumVertices() {
			t.Fatalf("%v: run_start %+v", alg, start)
		}
		end, ok := evs[len(evs)-1].V.(RunEnd)
		if !ok {
			t.Fatalf("%v: last event %T", alg, evs[len(evs)-1].V)
		}
		if end.Components != countComponents(labels) || end.Err != "" || end.Duration <= 0 {
			t.Fatalf("%v: run_end %+v", alg, end)
		}
		if _, err := ValidateTraceEvents(evs); err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
	}
}

// TestTraceCompatViews checks that the legacy Phases/Levels accumulators and
// the trace-derived views are built from the same event stream: attaching
// both must produce identical numbers.
func TestTraceCompatViews(t *testing.T) {
	g := RMatGraph(9, RMatOptions{EdgeFactor: 8, Seed: 2})
	for _, alg := range decompAlgorithms {
		tr := NewTrace()
		var pt PhaseTimes
		var ls []LevelStat
		if _, err := ConnectedComponents(g, Options{
			Algorithm: alg, Seed: 9, Recorder: tr, Phases: &pt, Levels: &ls,
		}); err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if got := PhaseTimesOf(tr); got != pt {
			t.Fatalf("%v: PhaseTimesOf %+v != legacy %+v", alg, got, pt)
		}
		got := LevelStatsOf(tr)
		if len(got) != len(ls) {
			t.Fatalf("%v: %d trace levels vs %d legacy", alg, len(got), len(ls))
		}
		for i := range ls {
			if got[i] != ls[i] {
				t.Fatalf("%v: level %d: %+v != %+v", alg, i, got[i], ls[i])
			}
		}
		if pt.Total() <= 0 || len(ls) == 0 {
			t.Fatalf("%v: empty legacy views %+v %v", alg, pt, ls)
		}
	}
}

// TestTraceJSONLEndToEnd streams a live run through the JSONL recorder and
// re-validates the parsed bytes.
func TestTraceJSONLEndToEnd(t *testing.T) {
	g := RMatGraph(9, RMatOptions{EdgeFactor: 8, Seed: 4})
	var buf bytes.Buffer
	jr := NewJSONLRecorder(&buf)
	if _, err := ConnectedComponents(g, Options{Recorder: jr, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if err := jr.Flush(); err != nil {
		t.Fatal(err)
	}
	sum, err := ValidateTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Runs != 1 || sum.Levels == 0 || sum.Rounds == 0 || sum.Phases == 0 || sum.Counters != 3 {
		t.Fatalf("summary %+v", sum)
	}
}

// TestDecomposeTrace checks the standalone decomposition entry point emits a
// bracketed level-0 stream.
func TestDecomposeTrace(t *testing.T) {
	g := RMatGraph(9, RMatOptions{EdgeFactor: 8, Seed: 6})
	tr := NewTrace()
	d, err := Decompose(g, DecompOptions{Seed: 3, Recorder: tr})
	if err != nil {
		t.Fatal(err)
	}
	runs := tr.Runs()
	if len(runs) != 1 || runs[0].Vertices != g.NumVertices() {
		t.Fatalf("runs %+v", runs)
	}
	if len(tr.Rounds()) == 0 || len(tr.Phases()) == 0 {
		t.Fatal("no round/phase events from Decompose")
	}
	for _, r := range tr.Rounds() {
		if r.Level != 0 {
			t.Fatalf("standalone decomposition emitted level %d", r.Level)
		}
	}
	if d.NumPartitions <= 0 {
		t.Fatalf("partitions %d", d.NumPartitions)
	}
	if _, err := ValidateTraceEvents(tr.Events()); err != nil {
		t.Fatal(err)
	}
}

// TestOptionsValidation checks the API-boundary rejections: out-of-range or
// NaN parameters and knob/algorithm mismatches return descriptive errors
// instead of panicking or silently misbehaving.
func TestOptionsValidation(t *testing.T) {
	g := LineGraph(10, 1)
	nan := math.NaN()
	bad := map[string]Options{
		"beta-negative":          {Beta: -0.5},
		"beta-one":               {Beta: 1},
		"beta-above":             {Beta: 1.5},
		"beta-nan":               {Beta: nan},
		"beta-nan-min":           {Algorithm: DecompMin, Beta: nan},
		"beta-nan-ldd":           {Algorithm: LDDUnionFind, Beta: nan},
		"beta-negative-ldd":      {Algorithm: LDDUnionFind, Beta: -1},
		"densefrac-negative":     {DenseFrac: -0.2},
		"densefrac-above":        {DenseFrac: 1.5},
		"densefrac-nan":          {DenseFrac: nan},
		"edgeparallel-neg":       {EdgeParallel: -1},
		"edgeparallel-serial":    {Algorithm: SerialSF, EdgeParallel: 8},
		"edgeparallel-ldd":       {Algorithm: LDDUnionFind, EdgeParallel: 8},
		"edgeparallel-labelprop": {Algorithm: LabelProp, EdgeParallel: 8},
	}
	for name, opt := range bad {
		if _, err := ConnectedComponents(g, opt); err == nil {
			t.Errorf("%s: accepted %+v", name, opt)
		}
	}
	good := map[string]Options{
		"defaults":      {},
		"beta-edge":     {Beta: 0.999},
		"densefrac-one": {DenseFrac: 1},
		"edgeparallel":  {Algorithm: DecompArb, EdgeParallel: 4},
	}
	for name, opt := range good {
		labels, err := ConnectedComponents(g, opt)
		if err != nil {
			t.Errorf("%s: rejected: %v", name, err)
			continue
		}
		if err := VerifyLabeling(g, labels); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := Decompose(g, DecompOptions{Beta: nan}); err == nil {
		t.Error("Decompose accepted NaN beta")
	}
	if _, err := Decompose(g, DecompOptions{Beta: 2}); err == nil {
		t.Error("Decompose accepted beta 2")
	}
}

// TestRepeatedRunsIdenticalLabels is the dirty-buffer regression test: the
// engine recycles pooled machines and arena scratch, so a second run with
// the same seed must produce byte-identical labels even when other
// algorithms ran in between and left the arena dirty.
func TestRepeatedRunsIdenticalLabels(t *testing.T) {
	g := RMatGraph(10, RMatOptions{EdgeFactor: 8, Seed: 13})
	for _, alg := range decompAlgorithms {
		opt := Options{Algorithm: alg, Seed: 21}
		first, err := ConnectedComponents(g, opt)
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		// Dirty the pooled scratch with different shapes and algorithms.
		if _, err := ConnectedComponents(LineGraph(5000, 2), Options{Algorithm: alg, Seed: 99}); err != nil {
			t.Fatal(err)
		}
		if _, err := ConnectedComponents(g, Options{Algorithm: LabelProp}); err != nil {
			t.Fatal(err)
		}
		second, err := ConnectedComponents(g, opt)
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if !int32SlicesEqual(first, second) {
			t.Fatalf("%v: repeated run changed labels", alg)
		}
	}
}

func int32SlicesEqual(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestReadBinaryGraphRejectsCorruption covers the public wrapper over the
// hardened binary reader.
func TestReadBinaryGraphRejectsCorruption(t *testing.T) {
	g := LineGraph(20, 1)
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	if _, err := ReadBinaryGraph(bytes.NewReader(good)); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBinaryGraph(bytes.NewReader(good[:len(good)-2])); err == nil {
		t.Fatal("truncated graph accepted")
	}
}
