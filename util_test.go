package parconn

import (
	"bytes"
	"testing"
)

func TestVerifyLabelingPublic(t *testing.T) {
	g := Union(LineGraph(50, 1), Grid3DGraph(3, 2))
	for _, alg := range Algorithms {
		labels, err := ConnectedComponents(g, Options{Algorithm: alg, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		if err := VerifyLabeling(g, labels); err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
	}
	bad := make([]int32, g.NumVertices())
	if VerifyLabeling(g, bad) == nil {
		t.Fatal("all-zero labeling accepted on a disconnected graph")
	}
}

func TestSummarizePublic(t *testing.T) {
	s := Summarize(LineGraph(100, 1), 1)
	if s.Components != 1 || s.ApproxDiameter != 99 {
		t.Fatalf("%+v", s)
	}
}

func TestBinaryGraphPublic(t *testing.T) {
	g := RMatGraph(8, RMatOptions{EdgeFactor: 4, Seed: 1})
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinaryGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumEdges() != g.NumEdges() {
		t.Fatal("binary round trip changed edge count")
	}
	if _, err := ReadBinaryGraph(bytes.NewReader([]byte("nope"))); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestUnionFindPublic(t *testing.T) {
	uf := NewUnionFind(6)
	if uf.Connected(0, 1) {
		t.Fatal("fresh vertices connected")
	}
	if !uf.Union(0, 1) || !uf.Union(1, 2) {
		t.Fatal("unions reported duplicate")
	}
	if uf.Union(0, 2) {
		t.Fatal("redundant union reported new")
	}
	if !uf.Connected(0, 2) || uf.Connected(0, 3) {
		t.Fatal("connectivity wrong")
	}
	if uf.Find(0) != uf.Find(2) {
		t.Fatal("find mismatch")
	}
	labels := uf.Labels()
	if labels[0] != labels[2] || labels[0] == labels[3] {
		t.Fatalf("labels=%v", labels)
	}
	// Streaming equivalence: inserting a graph's edges must reproduce
	// ConnectedComponents' partition.
	g := Union(LineGraph(40, 1), StarGraph(10))
	uf2 := NewUnionFind(g.NumVertices())
	for v := int32(0); int(v) < g.NumVertices(); v++ {
		for _, w := range g.Neighbors(v) {
			if w > v {
				uf2.Union(v, w)
			}
		}
	}
	want, err := ConnectedComponents(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := uf2.Labels()
	if NumComponents(got) != NumComponents(want) {
		t.Fatal("streaming union-find disagrees")
	}
	if err := VerifyLabeling(g, got); err != nil {
		t.Fatal(err)
	}
}
